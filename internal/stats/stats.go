// Package stats provides the statistical machinery the availability
// study relies on: numerically stable moment accumulation, Student-t
// confidence intervals for Monte-Carlo estimates (the paper reports
// 99% confidence at 1e6 iterations), and availability metric
// conversions ("number of nines", downtime per year).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator tracks count, mean and variance of a stream of
// observations using Welford's online algorithm, which stays accurate
// for the tiny unavailability magnitudes (1e-9) this study produces.
// The zero value is ready to use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// Merge folds another accumulator into this one (Chan et al. parallel
// variance update), used to combine per-worker Monte-Carlo batches.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	delta := b.mean - a.mean
	total := a.n + b.n
	a.mean += delta * float64(b.n) / float64(total)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(total)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = total
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation; NaN when empty.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation; NaN when empty.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// ConfidenceInterval returns the symmetric Student-t confidence
// interval of the mean at the given confidence level (e.g. 0.99). For
// n < 2 the interval is degenerate at the mean.
func (a *Accumulator) ConfidenceInterval(level float64) Interval {
	if a.n < 2 {
		return Interval{a.mean, a.mean}
	}
	h := a.HalfWidth(level)
	return Interval{a.mean - h, a.mean + h}
}

// HalfWidth returns the Student-t confidence half-width at the given
// level. As the paper notes (§III), the Monte-Carlo error is inversely
// proportional to the square root of the iteration count times the
// t coefficient for the target confidence.
func (a *Accumulator) HalfWidth(level float64) float64 {
	if a.n < 2 {
		return 0
	}
	tcrit := StudentTQuantile(float64(a.n-1), 0.5+level/2)
	return tcrit * a.StdErr()
}

// Interval is a closed interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

func (iv Interval) String() string { return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi) }

// ---------------------------------------------------------------------
// Student-t distribution
// ---------------------------------------------------------------------

// StudentTCDF returns P(T <= t) for the Student-t law with nu degrees
// of freedom, via the regularized incomplete beta function.
func StudentTCDF(nu, t float64) float64 {
	if nu <= 0 {
		panic(fmt.Sprintf("stats: t degrees of freedom %v must be positive", nu))
	}
	if t == 0 {
		return 0.5
	}
	x := nu / (nu + t*t)
	p := 0.5 * RegIncBeta(nu/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTQuantile returns the p-quantile of the Student-t law with nu
// degrees of freedom. For nu > 1e6 the normal quantile is returned.
func StudentTQuantile(nu, p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: t quantile probability %v outside (0,1)", p))
	}
	if nu > 1e6 {
		return normQuantileLocal(p)
	}
	if p == 0.5 {
		return 0
	}
	// Bracket then bisect on the CDF; the t law is symmetric so only
	// magnitudes matter for the bracket.
	lo, hi := -1.0, 1.0
	for StudentTCDF(nu, lo) > p {
		lo *= 2
		if lo < -1e12 {
			break
		}
	}
	for StudentTCDF(nu, hi) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(nu, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	return (lo + hi) / 2
}

// RegIncBeta computes the regularized incomplete beta function
// I_x(a, b) by the continued-fraction expansion (Numerical Recipes
// betacf), accurate to ~1e-14 over the domain used here.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the incomplete beta continued fraction by modified
// Lentz's method.
func betaCF(a, b, x float64) float64 {
	const tiny = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 500; m++ {
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + 2*fm) * (a + 2*fm))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + 2*fm) * (qap + 2*fm))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return h
}

// normQuantileLocal mirrors dist.NormQuantile without importing dist
// (stats must stay dependency-light); bisection on erfc is plenty for
// the large-nu fallback.
func normQuantileLocal(p float64) float64 {
	cdf := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ---------------------------------------------------------------------
// Availability metrics
// ---------------------------------------------------------------------

// HoursPerYear is the conversion constant used for downtime-per-year
// reporting.
const HoursPerYear = 8766.0 // 365.25 days

// Nines converts an availability in [0,1) to the "number of nines"
// scale used throughout the paper's figures:
// nines = -log10(1 - availability). Availability 1 maps to +Inf.
func Nines(availability float64) float64 {
	if availability >= 1 {
		return math.Inf(1)
	}
	if availability < 0 {
		panic(fmt.Sprintf("stats: availability %v < 0", availability))
	}
	return -math.Log10(1 - availability)
}

// FromNines converts a number-of-nines back to an availability.
func FromNines(nines float64) float64 {
	if math.IsInf(nines, 1) {
		return 1
	}
	return 1 - math.Pow(10, -nines)
}

// Unavailability returns 1 - availability, clamped at 0.
func Unavailability(availability float64) float64 {
	u := 1 - availability
	if u < 0 {
		return 0
	}
	return u
}

// DowntimeHoursPerYear converts an availability to expected downtime
// hours per year.
func DowntimeHoursPerYear(availability float64) float64 {
	return Unavailability(availability) * HoursPerYear
}

// DowntimeMinutesPerYear converts an availability to expected downtime
// minutes per year.
func DowntimeMinutesPerYear(availability float64) float64 {
	return DowntimeHoursPerYear(availability) * 60
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

// Histogram is a fixed-bin histogram over [Lo, Hi) with overflow and
// underflow counters, used to inspect downtime distributions from the
// Monte-Carlo simulator.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int64
	Underflow int64
	Overflow  int64
	total     int64
}

// NewHistogram returns a histogram with bins equal-width bins spanning
// [lo, hi). It panics unless lo < hi and bins >= 1.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo || bins < 1 {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard against round-up at the edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including
// under/overflow.
func (h *Histogram) Total() int64 { return h.total }

// Merge folds another histogram with identical binning into this one;
// it panics on a binning mismatch. Used to combine per-worker
// Monte-Carlo histograms.
func (h *Histogram) Merge(o *Histogram) {
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		panic("stats: merging histograms with different binning")
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Underflow += o.Underflow
	h.Overflow += o.Overflow
	h.total += o.total
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Quantile returns an approximate q-quantile from binned data
// (midpoint rule); NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	target := int64(q * float64(h.total))
	cum := h.Underflow
	if cum > target {
		return h.Lo
	}
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			return h.BinCenter(i)
		}
	}
	return h.Hi
}

// ---------------------------------------------------------------------
// Small-sample helpers
// ---------------------------------------------------------------------

// Mean returns the arithmetic mean of xs (NaN when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (NaN when empty). The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// GeoMean returns the geometric mean of strictly positive xs (NaN when
// empty or when any element is non-positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
