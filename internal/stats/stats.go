// Package stats provides the statistical machinery the availability
// study relies on: numerically stable moment accumulation, Student-t
// confidence intervals for Monte-Carlo estimates (the paper reports
// 99% confidence at 1e6 iterations), and availability metric
// conversions ("number of nines", downtime per year).
//
// Normal quantiles come from dist.NormQuantile (Acklam + Halley): the
// single shared inverse-CDF implementation of the repository.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"herald/internal/dist"
)

// Accumulator tracks count, mean and variance of a stream of
// observations using Welford's online algorithm, which stays accurate
// for the tiny unavailability magnitudes (1e-9) this study produces.
// The zero value is ready to use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// Merge folds another accumulator into this one (Chan et al. parallel
// variance update), used to combine per-worker Monte-Carlo batches.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	delta := b.mean - a.mean
	total := a.n + b.n
	a.mean += delta * float64(b.n) / float64(total)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(total)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = total
}

// AccumulatorState is the exported snapshot of an Accumulator: the
// exact sufficient statistics of the stream seen so far. It is the
// wire and checkpoint representation used by sharded Monte-Carlo runs;
// restoring a state and continuing reproduces the accumulator
// bit-for-bit.
type AccumulatorState struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// State returns the accumulator's exact snapshot.
func (a *Accumulator) State() AccumulatorState {
	return AccumulatorState{N: a.n, Mean: a.mean, M2: a.m2, Min: a.min, Max: a.max}
}

// SetState overwrites the accumulator with a previously captured
// snapshot.
func (a *Accumulator) SetState(st AccumulatorState) {
	a.n, a.mean, a.m2, a.min, a.max = st.N, st.Mean, st.M2, st.Min, st.Max
}

// MarshalJSON encodes the accumulator as its AccumulatorState.
func (a Accumulator) MarshalJSON() ([]byte, error) {
	return json.Marshal(a.State())
}

// UnmarshalJSON decodes an AccumulatorState back into the accumulator.
func (a *Accumulator) UnmarshalJSON(b []byte) error {
	var st AccumulatorState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	a.SetState(st)
	return nil
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation; NaN when empty.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation; NaN when empty.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// ConfidenceInterval returns the symmetric Student-t confidence
// interval of the mean at the given confidence level (e.g. 0.99). For
// n < 2 the interval is degenerate at the mean; a level outside (0, 1)
// — including NaN — yields a NaN interval rather than a panic.
func (a *Accumulator) ConfidenceInterval(level float64) Interval {
	if !(level > 0 && level < 1) {
		return Interval{math.NaN(), math.NaN()}
	}
	if a.n < 2 {
		return Interval{a.mean, a.mean}
	}
	h := a.HalfWidth(level)
	return Interval{a.mean - h, a.mean + h}
}

// HalfWidth returns the Student-t confidence half-width at the given
// level. As the paper notes (§III), the Monte-Carlo error is inversely
// proportional to the square root of the iteration count times the
// t coefficient for the target confidence. A level outside (0, 1) —
// including NaN — yields NaN rather than a panic, so callers can
// validate with a single IsNaN check.
func (a *Accumulator) HalfWidth(level float64) float64 {
	if !(level > 0 && level < 1) {
		return math.NaN()
	}
	if a.n < 2 {
		return 0
	}
	tcrit := StudentTQuantile(float64(a.n-1), 0.5+level/2)
	return tcrit * a.StdErr()
}

// Interval is a closed interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

func (iv Interval) String() string { return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi) }

// ---------------------------------------------------------------------
// Student-t distribution
// ---------------------------------------------------------------------

// StudentTCDF returns P(T <= t) for the Student-t law with nu degrees
// of freedom, via the regularized incomplete beta function.
func StudentTCDF(nu, t float64) float64 {
	if nu <= 0 {
		panic(fmt.Sprintf("stats: t degrees of freedom %v must be positive", nu))
	}
	if t == 0 {
		return 0.5
	}
	x := nu / (nu + t*t)
	p := 0.5 * RegIncBeta(nu/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTQuantile returns the p-quantile of the Student-t law with nu
// degrees of freedom. For nu > 1e6 the normal quantile is returned.
//
// The inversion starts from Hill's Cornish-Fisher expansion around the
// normal quantile (exact closed forms for nu = 1 and 2) and polishes
// with safeguarded Newton steps on StudentTCDF using the analytic t
// density — typically 2-4 CDF evaluations instead of the ~200 a
// bracketed bisection needs. The Monte-Carlo summary path evaluates
// this once per Run for the confidence half-width.
func StudentTQuantile(nu, p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: t quantile probability %v outside (0,1)", p))
	}
	if nu > 1e6 {
		return dist.NormQuantile(p)
	}
	if p == 0.5 {
		return 0
	}
	switch nu {
	case 1:
		// Cauchy: F^-1(p) = tan(pi (p - 1/2)).
		return math.Tan(math.Pi * (p - 0.5))
	case 2:
		return (2*p - 1) / math.Sqrt(2*p*(1-p))
	}

	// Hill (1970): t ~ z + g1/nu + g2/nu^2 + g3/nu^3 + g4/nu^4.
	z := dist.NormQuantile(p)
	z2 := z * z
	g1 := z * (z2 + 1) / 4
	g2 := z * ((5*z2+16)*z2 + 3) / 96
	g3 := z * (((3*z2+19)*z2+17)*z2 - 15) / 384
	g4 := z * ((((79*z2+776)*z2+1482)*z2-1920)*z2 - 945) / 92160
	inv := 1 / nu
	x := z + inv*(g1+inv*(g2+inv*(g3+inv*g4)))

	// Safeguarded Newton on f(x) = CDF(x) - p with the analytic pdf;
	// steps that leave the maintained bracket fall back to bisection.
	lgn, _ := math.Lgamma((nu + 1) / 2)
	lgd, _ := math.Lgamma(nu / 2)
	logC := lgn - lgd - 0.5*math.Log(nu*math.Pi)
	lo, hi := math.Inf(-1), math.Inf(1)
	for i := 0; i < 60; i++ {
		f := StudentTCDF(nu, x) - p
		if f == 0 {
			return x
		}
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		pdf := math.Exp(logC - (nu+1)/2*math.Log1p(x*x/nu))
		next := x - f/pdf
		// Accept a converged step before safeguarding: at the root the
		// proposal can land exactly on a bracket edge.
		if math.Abs(next-x) <= 1e-13*(1+math.Abs(x)) && !math.IsNaN(next) {
			return next
		}
		if !(next > lo && next < hi) || pdf == 0 || math.IsNaN(next) {
			switch {
			case math.IsInf(lo, -1):
				next = hi - 1
			case math.IsInf(hi, 1):
				next = lo + 1
			default:
				next = (lo + hi) / 2
			}
		}
		x = next
	}
	return x
}

// RegIncBeta computes the regularized incomplete beta function
// I_x(a, b) by the continued-fraction expansion (Numerical Recipes
// betacf), accurate to ~1e-14 over the domain used here.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the incomplete beta continued fraction by modified
// Lentz's method.
func betaCF(a, b, x float64) float64 {
	const tiny = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 500; m++ {
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + 2*fm) * (a + 2*fm))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + 2*fm) * (qap + 2*fm))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return h
}

// ---------------------------------------------------------------------
// Availability metrics
// ---------------------------------------------------------------------

// HoursPerYear is the conversion constant used for downtime-per-year
// reporting.
const HoursPerYear = 8766.0 // 365.25 days

// Nines converts an availability in [0,1) to the "number of nines"
// scale used throughout the paper's figures:
// nines = -log10(1 - availability). Availability 1 maps to +Inf.
func Nines(availability float64) float64 {
	if availability >= 1 {
		return math.Inf(1)
	}
	if availability < 0 {
		panic(fmt.Sprintf("stats: availability %v < 0", availability))
	}
	return -math.Log10(1 - availability)
}

// FromNines converts a number-of-nines back to an availability.
func FromNines(nines float64) float64 {
	if math.IsInf(nines, 1) {
		return 1
	}
	return 1 - math.Pow(10, -nines)
}

// Unavailability returns 1 - availability, clamped at 0.
func Unavailability(availability float64) float64 {
	u := 1 - availability
	if u < 0 {
		return 0
	}
	return u
}

// DowntimeHoursPerYear converts an availability to expected downtime
// hours per year.
func DowntimeHoursPerYear(availability float64) float64 {
	return Unavailability(availability) * HoursPerYear
}

// DowntimeMinutesPerYear converts an availability to expected downtime
// minutes per year.
func DowntimeMinutesPerYear(availability float64) float64 {
	return DowntimeHoursPerYear(availability) * 60
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

// Histogram is a fixed-bin histogram over [Lo, Hi) with overflow and
// underflow counters, used to inspect downtime distributions from the
// Monte-Carlo simulator.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int64
	Underflow int64
	Overflow  int64
	total     int64
}

// NewHistogram returns a histogram with bins equal-width bins spanning
// [lo, hi). It panics unless lo < hi and bins >= 1.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo || bins < 1 {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard against round-up at the edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including
// under/overflow.
func (h *Histogram) Total() int64 { return h.total }

// Merge folds another histogram with identical binning into this one;
// it panics on a binning mismatch. Used to combine per-worker
// Monte-Carlo histograms.
func (h *Histogram) Merge(o *Histogram) {
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		panic("stats: merging histograms with different binning")
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Underflow += o.Underflow
	h.Overflow += o.Overflow
	h.total += o.total
}

// histogramState is the JSON shape of a Histogram, carrying the
// unexported running total across process boundaries.
type histogramState struct {
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	Counts    []int64 `json:"counts"`
	Underflow int64   `json:"underflow"`
	Overflow  int64   `json:"overflow"`
	Total     int64   `json:"total"`
}

// MarshalJSON encodes the histogram including its observation total.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramState{
		Lo: h.Lo, Hi: h.Hi, Counts: h.Counts,
		Underflow: h.Underflow, Overflow: h.Overflow, Total: h.total,
	})
}

// UnmarshalJSON decodes a histogram serialized by MarshalJSON.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var st histogramState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	if st.Hi <= st.Lo || len(st.Counts) < 1 {
		return fmt.Errorf("stats: invalid histogram [%v,%v) with %d bins", st.Lo, st.Hi, len(st.Counts))
	}
	h.Lo, h.Hi, h.Counts = st.Lo, st.Hi, st.Counts
	h.Underflow, h.Overflow, h.total = st.Underflow, st.Overflow, st.Total
	return nil
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Quantile returns an approximate q-quantile from binned data
// (midpoint rule): the bin holding the ceil(q·n)-th smallest
// observation (empirical type-1 quantile). Underflow answers h.Lo and
// overflow h.Hi; NaN when empty or for q outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 || !(q >= 0 && q <= 1) {
		return math.NaN()
	}
	// The rank of the q-quantile observation, clamped to [1, total]:
	// at q=1 the target is the maximum observation itself, which lives
	// in the last non-empty bin — not h.Hi, which a truncating
	// int64(q*total) with a strict cum>target test used to answer even
	// with all mass in an interior bin.
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	if target > h.total {
		target = h.total
	}
	cum := h.Underflow
	if cum >= target {
		return h.Lo
	}
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return h.BinCenter(i)
		}
	}
	// Only Overflow mass remains above the last bin.
	return h.Hi
}

// ---------------------------------------------------------------------
// Small-sample helpers
// ---------------------------------------------------------------------

// Mean returns the arithmetic mean of xs (NaN when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (NaN when empty). The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// GeoMean returns the geometric mean of strictly positive xs (NaN when
// empty or when any element is non-positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
