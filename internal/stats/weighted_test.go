package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// naiveWeighted computes the WeightedAccumulator's sufficient
// statistics in two passes at long-double-free reference precision:
// the mean first, then the centred sums. The online accumulator must
// match to floating-point accuracy for arbitrary streams.
type naiveWeighted struct {
	n                       int64
	w, w2, mean, m2, s1, v2 float64
}

func naiveOf(xs, ws []float64) naiveWeighted {
	var nv naiveWeighted
	nv.n = int64(len(xs))
	for i, w := range ws {
		nv.w += w
		nv.w2 += w * w
		nv.mean += w * xs[i]
	}
	if nv.w == 0 {
		nv.mean = 0
		return nv
	}
	nv.mean /= nv.w
	for i, w := range ws {
		d := xs[i] - nv.mean
		nv.m2 += w * d * d
		nv.s1 += w * w * d
		nv.v2 += w * w * d * d
	}
	return nv
}

func weightedStream(rng *rand.Rand, n int) (xs, ws []float64) {
	xs = make([]float64, n)
	ws = make([]float64, n)
	for i := range xs {
		// A zero-inflated availability-like stream with lognormal
		// weights — the regime the accumulator exists for.
		if rng.Float64() < 0.7 {
			xs[i] = 1
		} else {
			xs[i] = 1 - rng.Float64()*1e-3
		}
		ws[i] = math.Exp(rng.NormFloat64())
	}
	return xs, ws
}

func TestWeightedAccumulatorMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs, ws := weightedStream(rng, 5000)
	var a WeightedAccumulator
	for i := range xs {
		a.Add(xs[i], ws[i])
	}
	nv := naiveOf(xs, ws)
	approx := func(name string, got, want, tol float64) {
		t.Helper()
		scale := math.Max(math.Abs(want), 1e-300)
		if math.Abs(got-want)/scale > tol {
			t.Errorf("%s: online %v vs two-pass %v", name, got, want)
		}
	}
	if a.N() != nv.n {
		t.Errorf("n: %d vs %d", a.N(), nv.n)
	}
	approx("sum of weights", a.SumW(), nv.w, 1e-12)
	approx("mean", a.Mean(), nv.mean, 1e-12)
	approx("ess", a.ESS(), nv.w*nv.w/nv.w2, 1e-12)
	st := a.State()
	approx("m2", st.M2, nv.m2, 1e-9)
	approx("s1", st.S1, nv.s1, 1e-6)
	approx("v2", st.V2, nv.v2, 1e-9)
	approx("HT mean", a.MeanHT(), nv.w*nv.mean/float64(nv.n), 1e-12)
}

// TestWeightedMergeMatchesSequential pins exactness of the recentred
// merge: any grouping of the stream into sub-accumulators merged in
// stream order agrees with the sequential fold to floating-point
// accuracy, and repeating the identical merge tree is bit-identical
// (the determinism the canonical-cell shard contract builds on —
// bit-identity across partitions comes from a *fixed* merge tree, not
// from merge associativity).
func TestWeightedMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs, ws := weightedStream(rng, 2048)
	var seq WeightedAccumulator
	for i := range xs {
		seq.Add(xs[i], ws[i])
	}
	fold := func(chunks []int) WeightedAccumulator {
		var merged WeightedAccumulator
		at := 0
		for _, c := range chunks {
			var part WeightedAccumulator
			for i := at; i < at+c; i++ {
				part.Add(xs[i], ws[i])
			}
			merged.Merge(&part)
			at += c
		}
		return merged
	}
	for _, chunks := range [][]int{{2048}, {1, 2047}, {64, 64, 1920}, {1000, 1000, 48}, {512, 512, 512, 512}} {
		merged := fold(chunks)
		if again := fold(chunks); again.State() != merged.State() {
			t.Errorf("grouping %v: identical merge tree not bit-identical", chunks)
		}
		ms, ss := merged.State(), seq.State()
		if merged.N() != seq.N() {
			t.Fatalf("grouping %v: n %d, want %d", chunks, merged.N(), seq.N())
		}
		approx := func(name string, got, want, tol float64) {
			t.Helper()
			if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-300) {
				t.Errorf("grouping %v: %s merged %v vs sequential %v", chunks, name, got, want)
			}
		}
		approx("w", ms.W, ss.W, 1e-12)
		approx("w2", ms.W2, ss.W2, 1e-12)
		approx("mean", ms.Mean, ss.Mean, 1e-12)
		approx("m2", ms.M2, ss.M2, 1e-9)
		approx("s1", ms.S1, ss.S1, 1e-6)
		approx("v2", ms.V2, ss.V2, 1e-9)
	}
}

// TestWeightedUnitWeightsMatchAccumulator: with every weight 1 the
// weighted accessors must agree with the plain Accumulator — the
// unweighted path is the special case, not a separate convention.
func TestWeightedUnitWeightsMatchAccumulator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var a Accumulator
	var w WeightedAccumulator
	for i := 0; i < 4000; i++ {
		x := 1.0
		if rng.Float64() < 0.2 {
			x = rng.Float64()
		}
		a.Add(x)
		w.Add(x, 1)
	}
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-13*math.Max(math.Abs(want), 1) {
			t.Errorf("%s: weighted %v vs unweighted %v", name, got, want)
		}
	}
	approx("mean", w.Mean(), a.Mean())
	approx("variance", w.Variance(), a.Variance())
	approx("stderr", w.StdErr(), a.StdErr())
	approx("half-width", w.HalfWidth(0.99), a.HalfWidth(0.99))
	approx("ess", w.ESS(), float64(a.N()))
	approx("HT mean", w.MeanHT(), a.Mean())
}

func TestWeightedESSIdentities(t *testing.T) {
	var a WeightedAccumulator
	if a.ESS() != 0 || a.Mean() != 0 || a.MeanHT() != 0 {
		t.Error("empty accumulator must answer zeros")
	}
	// Equal weights: ESS = n regardless of the common factor.
	for i := 0; i < 10; i++ {
		a.Add(float64(i), 0.25)
	}
	if math.Abs(a.ESS()-10) > 1e-12 {
		t.Errorf("equal weights: ESS %v, want 10", a.ESS())
	}
	// One dominating weight: ESS collapses toward 1.
	a.Add(3, 1e9)
	if a.ESS() > 1.001 {
		t.Errorf("dominated stream: ESS %v, want ~1", a.ESS())
	}
	// Zero-weight observations count toward n but not toward the mass.
	before := a.State()
	a.Add(123, 0)
	after := a.State()
	before.N++
	if after != before {
		t.Errorf("zero-weight add changed mass: %+v vs %+v", after, before)
	}
}

func TestWeightedHalfWidthGuards(t *testing.T) {
	var a WeightedAccumulator
	a.Add(1, 1)
	a.Add(2, 1)
	for _, level := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if !math.IsNaN(a.HalfWidth(level)) {
			t.Errorf("level %v: want NaN", level)
		}
	}
	var single WeightedAccumulator
	single.Add(5, 2)
	if single.HalfWidth(0.99) != 0 {
		t.Error("n<2 must answer 0")
	}
	var flat WeightedAccumulator
	flat.Add(1, 2)
	flat.Add(1, 3)
	if flat.HalfWidth(0.99) != 0 {
		t.Error("zero-variance stream must answer 0")
	}
}

func TestWeightedMergeEdgeCases(t *testing.T) {
	var a, empty WeightedAccumulator
	a.Add(1, 2)
	want := a.State()
	a.Merge(&empty)
	if a.State() != want {
		t.Error("merging an empty accumulator changed the state")
	}
	// Zero-mass (all weights underflowed) side only moves n.
	var zeroMass WeightedAccumulator
	zeroMass.Add(9, 0)
	a.Merge(&zeroMass)
	want.N++
	if a.State() != want {
		t.Error("zero-mass merge must only add n")
	}
	// Merging into an empty accumulator copies the other side.
	var b WeightedAccumulator
	b.Merge(&a)
	if b.State() != a.State() {
		t.Error("merge into empty must copy")
	}
}

func TestWeightedJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	xs, ws := weightedStream(rng, 300)
	var a WeightedAccumulator
	for i := range xs {
		a.Add(xs[i], ws[i])
	}
	blob, err := json.Marshal(&a)
	if err != nil {
		t.Fatal(err)
	}
	var back WeightedAccumulator
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.State() != a.State() {
		t.Errorf("round trip lost state: %+v vs %+v", back.State(), a.State())
	}
	var st WeightedAccumulatorState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	if st != a.State() {
		t.Errorf("state decode mismatch: %+v vs %+v", st, a.State())
	}
}
