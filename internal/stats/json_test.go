package stats

import (
	"encoding/json"
	"testing"
)

// TestAccumulatorJSONRoundTrip pins the serialization shard partials
// rely on: an accumulator restored from JSON must be bit-identical —
// including continued accumulation and merging behavior.
func TestAccumulatorJSONRoundTrip(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{1e-9, 0.5, -3, 2.25, 1e12, 0.1} {
		a.Add(x)
	}
	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b Accumulator
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("round-trip changed the accumulator:\n%+v\n%+v", a, b)
	}
	// Continue the stream on both: still identical.
	a.Add(7.5)
	b.Add(7.5)
	if a != b {
		t.Fatalf("accumulation diverged after round-trip:\n%+v\n%+v", a, b)
	}
	var ma, mb Accumulator
	ma.Add(2)
	mb.Add(2)
	ma.Merge(&a)
	mb.Merge(&b)
	if ma != mb {
		t.Fatalf("merge diverged after round-trip:\n%+v\n%+v", ma, mb)
	}
}

// TestAccumulatorStateRoundTrip covers the explicit snapshot API.
func TestAccumulatorStateRoundTrip(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(4)
	var b Accumulator
	b.SetState(a.State())
	if a != b {
		t.Fatalf("SetState(State()) changed the accumulator:\n%+v\n%+v", a, b)
	}
}

// TestHistogramJSONRoundTrip checks the histogram keeps its counts,
// edges and (unexported) running total across serialization.
func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 2.5, 9.99, 10, 55} {
		h.Add(x)
	}
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	g := new(Histogram)
	if err := json.Unmarshal(raw, g); err != nil {
		t.Fatal(err)
	}
	if g.Lo != h.Lo || g.Hi != h.Hi || g.Underflow != h.Underflow || g.Overflow != h.Overflow {
		t.Fatalf("edges/outliers diverged: %+v vs %+v", g, h)
	}
	if g.Total() != h.Total() {
		t.Fatalf("total %d, want %d", g.Total(), h.Total())
	}
	for i := range h.Counts {
		if g.Counts[i] != h.Counts[i] {
			t.Fatalf("bin %d: %d, want %d", i, g.Counts[i], h.Counts[i])
		}
	}
	// Restored histograms must merge with originals (same binning).
	g.Merge(h)
	if g.Total() != 2*h.Total() {
		t.Fatalf("merge after round-trip: total %d, want %d", g.Total(), 2*h.Total())
	}
	// Invalid payloads are rejected.
	if err := json.Unmarshal([]byte(`{"lo":1,"hi":0,"counts":[1]}`), new(Histogram)); err == nil {
		t.Error("inverted-edge histogram accepted")
	}
}
