package stats

import (
	"fmt"
	"math"
)

// Sequential (precision-targeted) sampling. The paper's headline
// numbers are Monte-Carlo availability estimates quoted with 99%
// confidence intervals, so the natural stopping criterion is the
// interval itself: keep simulating until the Student-t half-width of
// the running mean reaches a requested precision, instead of running a
// preset iteration count. StopRule packages that criterion together
// with the safeguards sequential looks need.

// Default safeguards of StopRule; see the field docs.
const (
	// DefaultStopMinN is the minimum observation count before the rule
	// may bind.
	DefaultStopMinN = 256
	// DefaultStopMinEvents is the minimum informative-observation count
	// before the rule may bind.
	DefaultStopMinEvents = 16
)

// StopRule is the stopping criterion of a precision-targeted run:
// stop when the Student-t confidence half-width of the accumulated
// mean is at or below TargetHalfWidth.
//
// Availability samples are extremely zero-inflated — at paper-scale
// parameters the overwhelming majority of simulated lifetimes see no
// downtime at all and contribute the observation 1.0 exactly — so the
// raw observation count wildly overstates how much information the
// stream carries. Two safeguards keep early looks from binding on
// noise:
//
//   - the rule never fires before MinN observations and MinEvents
//     informative observations (iterations that saw any downtime), and
//     never on a zero-variance stream;
//   - the Student-t quantile is taken at the *effective* degrees of
//     freedom min(n-1, events): when the stream is event-limited, the
//     wider small-sample quantile applies, exactly as if the events
//     themselves were the sample.
//
// Because the effective quantile is at least as wide as the reporting
// quantile (which uses n-1 degrees of freedom), a met rule implies the
// reported half-width is also at or below the target.
//
// Sequential looks make any stopped interval slightly anticonservative
// (the stopping time is data-dependent); the safeguards bound, but do
// not remove, that effect.
type StopRule struct {
	// TargetHalfWidth is the requested confidence half-width; it must
	// be positive and finite.
	TargetHalfWidth float64
	// Confidence is the CI level the half-width is computed at
	// (default 0.99, the paper's choice).
	Confidence float64
	// MinN floors the observation count (default DefaultStopMinN).
	MinN int64
	// MinEvents floors the informative-observation count
	// (default DefaultStopMinEvents).
	MinEvents int64
}

// Validate checks the rule's parameters.
func (r StopRule) Validate() error {
	if !(r.TargetHalfWidth > 0) || math.IsInf(r.TargetHalfWidth, 0) {
		return fmt.Errorf("stats: target half-width %v must be positive and finite", r.TargetHalfWidth)
	}
	if r.Confidence < 0 || r.Confidence >= 1 {
		return fmt.Errorf("stats: confidence %v outside [0,1)", r.Confidence)
	}
	if r.MinN < 0 || r.MinEvents < 0 {
		return fmt.Errorf("stats: negative stop-rule floors (MinN %d, MinEvents %d)", r.MinN, r.MinEvents)
	}
	return nil
}

func (r StopRule) confidence() float64 {
	if r.Confidence == 0 {
		return 0.99
	}
	return r.Confidence
}

func (r StopRule) minN() int64 {
	if r.MinN == 0 {
		return DefaultStopMinN
	}
	return r.MinN
}

func (r StopRule) minEvents() int64 {
	if r.MinEvents == 0 {
		return DefaultStopMinEvents
	}
	return r.MinEvents
}

// EffectiveHalfWidth returns the safeguarded half-width the rule
// compares against the target: the Student-t quantile at
// min(n-1, events) degrees of freedom times the standard error.
// It returns +Inf while either floor is unmet or the variance is zero,
// so the value is directly comparable ("not yet enough information"
// sorts above every target). Degenerate effective-df inputs — a
// negative event count, a NaN or negative variance (e.g. restored from
// a corrupt snapshot) — likewise answer +Inf: a rule must never report
// "met" off inputs it cannot interpret.
func (r StopRule) EffectiveHalfWidth(a *Accumulator, events int64) float64 {
	n := a.N()
	if n < r.minN() || events < r.minEvents() {
		return math.Inf(1)
	}
	if !(a.Variance() > 0) { // zero, negative or NaN variance
		return math.Inf(1)
	}
	df := n - 1
	if events < df {
		df = events
	}
	if df <= 0 {
		return math.Inf(1)
	}
	hw := StudentTQuantile(float64(df), 0.5+r.confidence()/2) * a.StdErr()
	if math.IsNaN(hw) {
		return math.Inf(1)
	}
	return hw
}

// Met reports whether the rule binds for the accumulated stream:
// both floors reached and the effective half-width at or below the
// target. events is the number of informative observations folded into
// a (for availability streams, iterations with nonzero downtime).
func (r StopRule) Met(a *Accumulator, events int64) bool {
	return r.EffectiveHalfWidth(a, events) <= r.TargetHalfWidth
}

// EffectiveHalfWidthWeighted is EffectiveHalfWidth for an
// importance-sampled stream. The event count of the unweighted rule is
// replaced by the effective sample size (Σw)²/Σw²: under failure
// biasing nearly every iteration is informative, but degenerate
// weights can still concentrate the information in few of them, and
// ESS is the measure of both. Degrees of freedom are
// min(n-1, ESS-1); the MinEvents floor applies to ESS. NaN moments
// (including a NaN ESS or standard error) answer +Inf.
func (r StopRule) EffectiveHalfWidthWeighted(a *WeightedAccumulator) float64 {
	if a.N() < r.minN() {
		return math.Inf(1)
	}
	ess := a.ESS()
	if !(ess >= float64(r.minEvents())) { // also catches NaN
		return math.Inf(1)
	}
	se := a.StdErr()
	if !(se > 0) {
		return math.Inf(1)
	}
	df := ess - 1
	if fn := float64(a.N() - 1); fn < df {
		df = fn
	}
	if !(df > 0) {
		return math.Inf(1)
	}
	hw := StudentTQuantile(df, 0.5+r.confidence()/2) * se
	if math.IsNaN(hw) {
		return math.Inf(1)
	}
	return hw
}

// MetWeighted reports whether the rule binds for an importance-sampled
// stream, on ESS-based effective degrees of freedom.
func (r StopRule) MetWeighted(a *WeightedAccumulator) bool {
	return r.EffectiveHalfWidthWeighted(a) <= r.TargetHalfWidth
}
