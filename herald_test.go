package herald

import (
	"math"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	res, err := SolveConventional(PaperParams(4, 1e-6, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	if res.Nines() < 6 || res.Nines() > 8 {
		t.Fatalf("RAID5(3+1) at lambda=1e-6 hep=0.001: %v nines", res.Nines())
	}
}

func TestFacadeModelConsistency(t *testing.T) {
	conv, err := SolveConventional(PaperParams(4, 1e-6, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	fo, err := SolveFailover(PaperFailoverParams(4, 1e-6, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if fo.Availability <= conv.Availability {
		t.Fatal("fail-over should beat conventional under human error")
	}
	dp, err := SolveDualParity(PaperParams(6, 1e-5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SolveConventional(PaperParams(6, 1e-5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if dp.Availability <= sp.Availability {
		t.Fatal("dual parity should beat single parity")
	}
}

func TestFacadeSimulation(t *testing.T) {
	s, err := Simulate(PaperSimParams(4, 1e-4, 0.01), SimOptions{
		Iterations: 300, MissionTime: 1e5, Seed: 5, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Availability <= 0 || s.Availability >= 1 {
		t.Fatalf("availability = %v", s.Availability)
	}
}

func TestFacadeSimulationPolicies(t *testing.T) {
	p := PaperSimParams(4, 1e-4, 0.02)
	p.Policy = PolicyAutoFailover
	s, err := Simulate(p, SimOptions{Iterations: 300, MissionTime: 1e5, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Availability <= 0 {
		t.Fatalf("availability = %v", s.Availability)
	}
	dp := PaperSimParams(6, 1e-4, 0.02)
	dp.Policy = PolicyDualParity
	s2, err := Simulate(dp, SimOptions{Iterations: 300, MissionTime: 1e5, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Availability <= s.Availability-1 { // sanity only
		t.Fatalf("dual parity availability = %v", s2.Availability)
	}
}

func TestFacadeDistributions(t *testing.T) {
	if Exponential(0.1).Mean() != 10 {
		t.Error("exponential mean wrong")
	}
	w := WeibullFromMeanRate(1e-6, 1.48)
	if math.Abs(w.Mean()-1e6)/1e6 > 1e-12 {
		t.Errorf("weibull mean = %v", w.Mean())
	}
	if Weibull(2, 100).Mean() <= 0 {
		t.Error("weibull constructor broken")
	}
}

func TestFacadeNewDistributionFamilies(t *testing.T) {
	if Deterministic(5).Mean() != 5 || Deterministic(5).Var() != 0 {
		t.Error("deterministic moments wrong")
	}
	if Uniform(2, 10).Mean() != 6 {
		t.Error("uniform mean wrong")
	}
	if got, want := Lognormal(1, 0.5).Mean(), math.Exp(1.125); math.Abs(got-want) > 1e-12 {
		t.Errorf("lognormal mean = %v, want %v", got, want)
	}
	if got := LognormalFromMeanMedian(20, 15).Mean(); math.Abs(got-20) > 1e-9 {
		t.Errorf("lognormal-from-moments mean = %v, want 20", got)
	}
	if Gamma(2.5, 0.5).Mean() != 5 {
		t.Error("gamma mean wrong")
	}
	if Erlang(4, 2).Mean() != 2 {
		t.Error("erlang mean wrong")
	}
	h := HyperExponential([]float64{0.5, 0.5}, []float64{1, 0.1})
	if math.Abs(h.Mean()-5.5) > 1e-12 {
		t.Errorf("hyper-exponential mean = %v, want 5.5", h.Mean())
	}
	m := MixtureOf([]float64{1, 1}, Deterministic(2), Deterministic(4))
	if math.Abs(m.Mean()-3) > 1e-12 {
		t.Errorf("mixture mean = %v, want 3", m.Mean())
	}
	if got := NormQuantile(0.975); math.Abs(got-1.959963984540054) > 1e-9 {
		t.Errorf("NormQuantile(0.975) = %v", got)
	}
	// New families plug straight into the simulator.
	p := PaperSimParams(4, 1e-4, 0.01)
	p.Repair = Erlang(3, 0.3)
	p.HERecovery = HyperExponential([]float64{0.8, 0.2}, []float64{2, 0.1})
	s, err := Simulate(p, SimOptions{Iterations: 200, MissionTime: 1e5, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Availability <= 0 || s.Availability >= 1 {
		t.Fatalf("availability with phase-type services = %v", s.Availability)
	}
}

func TestFacadeRAIDPlanning(t *testing.T) {
	capacity, err := EquivalentCapacity(RAID1Mirror, RAID5Small, RAID5Wide)
	if err != nil {
		t.Fatal(err)
	}
	if capacity != 21 {
		t.Fatalf("capacity = %d", capacity)
	}
	fleet, err := PlanFleet(RAID5Small, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Count != 7 {
		t.Fatalf("fleet count = %d", fleet.Count)
	}
}

func TestFacadeMetrics(t *testing.T) {
	if math.Abs(Nines(0.999)-3) > 1e-9 {
		t.Error("nines wrong")
	}
	if d := DowntimeHoursPerYear(0.99); d < 80 || d > 95 {
		t.Errorf("two-nines downtime = %v h/yr", d)
	}
	if FleetAvailability(0.9, 2) != 0.81 {
		t.Error("fleet availability wrong")
	}
}

func TestFacadeHeadline(t *testing.T) {
	ratio, err := UnderestimationRatio(PaperParams(4, 1.31e-6, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 263x headline point.
	if ratio < 200 || ratio > 350 {
		t.Fatalf("underestimation ratio = %v, want ~263", ratio)
	}
	mttdl, err := MTTDL(PaperParams(4, 1e-6, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if mttdl <= 0 {
		t.Fatalf("MTTDL = %v", mttdl)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) < 5 {
		t.Fatal("experiment list too short")
	}
	tables, err := RunExperiment("7", ExperimentOptions{MCIterations: 50, MissionTime: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || !strings.Contains(tables[0].String(), "Fig. 7") {
		t.Fatal("Fig. 7 experiment malformed")
	}
}

func TestRunAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	var sb strings.Builder
	err := RunAllExperiments(&sb, ExperimentOptions{MCIterations: 100, MissionTime: 1e5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig. 6c") {
		t.Fatal("missing panel in full run")
	}
}

func TestVersion(t *testing.T) {
	if Version == "" {
		t.Fatal("empty version")
	}
}
